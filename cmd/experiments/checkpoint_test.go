package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"recyclesim"
	"recyclesim/internal/config"
	"recyclesim/internal/obs"
	"recyclesim/internal/stats"
)

// TestCheckpointRoundTrip: record then reload; restored cells carry
// the exact statistics that were journaled.
func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	cp, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	s := &stats.Sim{Cycles: 123, Committed: 456, PerProgram: []uint64{456}}
	m := &obs.Metrics{}
	m.SlotCycles[obs.CauseIdle] = 99
	if err := cp.record("k1", s, m); err != nil {
		t.Fatal(err)
	}
	if err := cp.record("k2", &stats.Sim{Cycles: 7}, nil); err != nil {
		t.Fatal(err)
	}
	cp.Close()

	cp2, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.resumed() != 2 {
		t.Fatalf("resumed %d cells, want 2", cp2.resumed())
	}
	rec, ok := cp2.lookup("k1")
	if !ok {
		t.Fatal("k1 lost")
	}
	if rec.Stats.Cycles != 123 || rec.Stats.Committed != 456 || len(rec.Stats.PerProgram) != 1 {
		t.Errorf("restored stats %+v", rec.Stats)
	}
	if rec.Metrics == nil || rec.Metrics.SlotCycles[obs.CauseIdle] != 99 {
		t.Errorf("restored metrics %+v", rec.Metrics)
	}
	if _, ok := cp2.lookup("k3"); ok {
		t.Error("phantom cell")
	}
}

// TestCheckpointTornFinalLine: a kill mid-append leaves a truncated
// last line; loading must keep every complete record and drop only the
// torn one.
func TestCheckpointTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	cp, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cp.record("whole", &stats.Sim{Cycles: 1}, nil)
	cp.Close()
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString(`{"key":"torn","stats":{"Cyc`)
	f.Close()

	cp2, err := loadCheckpoint(path)
	if err != nil {
		t.Fatalf("torn final line rejected: %v", err)
	}
	defer cp2.Close()
	if cp2.resumed() != 1 {
		t.Errorf("resumed %d, want 1", cp2.resumed())
	}
	if _, ok := cp2.lookup("torn"); ok {
		t.Error("torn record restored")
	}
}

// TestCheckpointCorruptMiddleRejected: corruption anywhere but a torn
// tail must fail loudly, not silently rerun and duplicate cells.
func TestCheckpointCorruptMiddleRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	os.WriteFile(path, []byte("not json\n{\"key\":\"k\",\"stats\":{}}\n"), 0o644)
	if _, err := loadCheckpoint(path); err == nil {
		t.Fatal("corrupt journal loaded")
	}
}

// poisonedRunner builds a runner whose middle job names a workload
// that does not exist, so its cell fails at program construction.
func poisonedRunner(keepGoing bool) *runner {
	r := newRunner()
	r.keepGoing = keepGoing
	job := func(names ...string) simJob {
		return simJob{mach: config.Big216(), feat: config.SMT, names: names, insts: 2_000}
	}
	r.jobs = []simJob{job("compress"), job("nonesuch"), job("li")}
	return r
}

// TestComputeAllKeepGoing: with -keep-going the poisoned cell records
// its error and zero stats while every healthy cell still completes.
func TestComputeAllKeepGoing(t *testing.T) {
	r := poisonedRunner(true)
	r.computeAll(context.Background(), 2)
	if r.errs[1] == nil {
		t.Fatal("poisoned cell recorded no error")
	}
	if r.results[1] == nil || r.results[1].Committed != 0 {
		t.Error("poisoned cell must print as zeros")
	}
	for _, i := range []int{0, 2} {
		if r.errs[i] != nil {
			t.Errorf("healthy cell %d failed: %v", i, r.errs[i])
		}
		if r.results[i].Committed < 2_000 {
			t.Errorf("healthy cell %d committed %d", i, r.results[i].Committed)
		}
	}
	failed := r.failedCells()
	if len(failed) != 1 || !strings.Contains(failed[0], "nonesuch") {
		t.Errorf("failure summary %q", failed)
	}
}

// TestComputeAllFailFast: without -keep-going the first failure
// cancels the remaining cells (serial pool makes the order exact; the
// budgets are large enough that every cell crosses the poll cadence).
func TestComputeAllFailFast(t *testing.T) {
	r := poisonedRunner(false)
	r.jobs[0], r.jobs[1] = r.jobs[1], r.jobs[0] // poison first
	for i := range r.jobs {
		r.jobs[i].insts = 100_000
	}
	r.computeAll(context.Background(), 1)
	if r.errs[0] == nil {
		t.Fatal("poisoned cell recorded no error")
	}
	for _, i := range []int{1, 2} {
		if !errors.Is(r.errs[i], recyclesim.ErrCanceled) {
			t.Errorf("cell %d after failure: err %v, want ErrCanceled", i, r.errs[i])
		}
	}
}

// TestComputeAllRestoresFromCheckpoint: a second sweep over the same
// cells must restore every result from the journal without
// simulating, and the restored statistics must be byte-identical.
func TestComputeAllRestoresFromCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	run := func() *runner {
		r := newRunner()
		cp, err := loadCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}
		defer cp.Close()
		r.cp = cp
		r.jobs = []simJob{
			{mach: config.Big216(), feat: config.RECRSRU, names: []string{"compress"}, insts: 2_000},
			{mach: config.Big18(), feat: config.TME, names: []string{"li"}, insts: 2_000},
		}
		r.computeAll(context.Background(), 2)
		return r
	}
	first := run()
	data1, _ := os.ReadFile(path)
	second := run()
	data2, _ := os.ReadFile(path)
	if string(data1) != string(data2) {
		t.Error("resumed sweep appended to a complete journal")
	}
	for i := range first.results {
		a := fmt.Sprintf("%+v", *first.results[i])
		b := fmt.Sprintf("%+v", *second.results[i])
		if a != b {
			t.Errorf("cell %d: restored stats differ from computed:\n %s\n %s", i, a, b)
		}
	}
}

// TestJournalKeysNeverCollideAcrossFlags: the journal key must change
// whenever any identity-bearing flag changes — sampling schedule,
// confidence level, or detailed vs. sampled mode — so a checkpoint
// written under one configuration is never replayed for another.
// (Regression: sampledCellKey once omitted the confidence level, so
// resuming a -sampled sweep after changing -confidence replayed stale
// IPCLo/IPCHi/CPIHalf bounds under the new label.)
func TestJournalKeysNeverCollideAcrossFlags(t *testing.T) {
	job := simJob{mach: config.Big216(), feat: config.RECRSRU, names: []string{"compress"}, insts: 20_000}
	sampledKey := func(s recyclesim.Sampling) string {
		r := newRunner()
		r.sampling = s
		return r.sampledCellKey(job)
	}
	sched := recyclesim.Sampling{Period: 4_000, IntervalLen: 400, WarmupLen: 400}
	variants := []struct {
		name string
		key  string
	}{
		{"detailed", cellKey(job)},
		{"sampled default confidence", sampledKey(sched)},
		{"sampled confidence 0.95", sampledKey(func() recyclesim.Sampling { s := sched; s.Confidence = 0.95; return s }())},
		{"sampled confidence 0.99", sampledKey(func() recyclesim.Sampling { s := sched; s.Confidence = 0.99; return s }())},
		{"sampled other period", sampledKey(func() recyclesim.Sampling { s := sched; s.Period = 8_000; return s }())},
		{"sampled other interval", sampledKey(func() recyclesim.Sampling { s := sched; s.IntervalLen = 800; return s }())},
		{"sampled other warmup", sampledKey(func() recyclesim.Sampling { s := sched; s.WarmupLen = 800; return s }())},
	}
	for i, a := range variants {
		for _, b := range variants[i+1:] {
			if a.key == b.key {
				t.Errorf("%s and %s share journal key %q", a.name, b.name, a.key)
			}
		}
	}
}

// TestSampledJournalNotReplayedAcrossFlagChanges: a sampled cell
// journaled under one schedule/confidence must be restored only by a
// sweep with the identical flags; any change misses and resimulates.
func TestSampledJournalNotReplayedAcrossFlagChanges(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	job := simJob{mach: config.Big216(), feat: config.RECRSRU, names: []string{"compress"}, insts: 20_000}
	base := recyclesim.Sampling{Period: 4_000, IntervalLen: 400, WarmupLen: 400, Confidence: 0.95}

	cp, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	rbase := newRunner()
	rbase.sampling = base
	if err := cp.recordSampled(rbase.sampledCellKey(job), &recyclesim.SampledResult{IPC: 1.5}); err != nil {
		t.Fatal(err)
	}
	cp.Close()

	cases := []struct {
		name       string
		mutate     func(*recyclesim.Sampling)
		wantReplay bool
	}{
		{"identical flags", func(*recyclesim.Sampling) {}, true},
		{"changed confidence", func(s *recyclesim.Sampling) { s.Confidence = 0.99 }, false},
		{"default (unset) confidence", func(s *recyclesim.Sampling) { s.Confidence = 0 }, false},
		{"changed period", func(s *recyclesim.Sampling) { s.Period = 8_000 }, false},
		{"changed interval", func(s *recyclesim.Sampling) { s.IntervalLen = 800 }, false},
		{"changed warmup", func(s *recyclesim.Sampling) { s.WarmupLen = 800 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp2, err := loadCheckpoint(path)
			if err != nil {
				t.Fatal(err)
			}
			defer cp2.Close()
			r := newRunner()
			r.sampling = base
			tc.mutate(&r.sampling)
			_, ok := cp2.lookup(r.sampledCellKey(job))
			if ok != tc.wantReplay {
				t.Errorf("replay = %v, want %v (key %q)", ok, tc.wantReplay, r.sampledCellKey(job))
			}
		})
	}

	// The detailed cell of the same configuration must never see the
	// sampled record either.
	cp3, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp3.Close()
	if _, ok := cp3.lookup(cellKey(job)); ok {
		t.Error("detailed cell key collides with a sampled record")
	}
}
