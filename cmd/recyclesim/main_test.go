package main

import (
	"strings"
	"testing"
)

// TestRunArgs is the table-driven contract for the CLI front-end: bad
// flags and unknown names exit 2 with a diagnostic naming the valid
// choices, valid invocations exit 0.
func TestRunArgs(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		want    int
		wantOut string // substring required on stdout
		wantErr string // substring required on stderr
	}{
		{
			name:    "tiny run succeeds",
			args:    []string{"-workloads", "compress", "-insts", "2000"},
			want:    0,
			wantOut: "IPC",
		},
		{
			name:    "list workloads",
			args:    []string{"-list"},
			want:    0,
			wantOut: "compress",
		},
		{
			name:    "unknown machine",
			args:    []string{"-machine", "huge.9.99"},
			want:    2,
			wantErr: `unknown machine "huge.9.99"`,
		},
		{
			name:    "unknown feature preset",
			args:    []string{"-features", "REC/XX"},
			want:    2,
			wantErr: `unknown feature preset "REC/XX"`,
		},
		{
			name:    "unknown workload",
			args:    []string{"-workloads", "compress,notabench"},
			want:    2,
			wantErr: `unknown workload "notabench"`,
		},
		{
			name:    "unknown alt policy",
			args:    []string{"-altpolicy", "sometimes"},
			want:    2,
			wantErr: `unknown alt policy "sometimes"`,
		},
		{
			name: "bad flag",
			args: []string{"-definitely-not-a-flag"},
			want: 2,
		},
		{
			name: "bad flag value",
			args: []string{"-insts", "many"},
			want: 2,
		},
		{
			name:    "stray positional argument",
			args:    []string{"compress"},
			want:    2,
			wantErr: "unexpected argument",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			got := run(tc.args, &stdout, &stderr)
			if got != tc.want {
				t.Fatalf("run(%q) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tc.args, got, tc.want, stdout.String(), stderr.String())
			}
			if tc.wantOut != "" && !strings.Contains(stdout.String(), tc.wantOut) {
				t.Errorf("stdout missing %q:\n%s", tc.wantOut, stdout.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantErr, stderr.String())
			}
		})
	}
}
