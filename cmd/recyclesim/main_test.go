package main

import (
	"context"
	"strings"
	"testing"
)

// TestRunArgs is the table-driven contract for the CLI front-end: bad
// flags and unknown names exit 2 with a diagnostic naming the valid
// choices, valid invocations exit 0.
func TestRunArgs(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		want    int
		wantOut string // substring required on stdout
		wantErr string // substring required on stderr
	}{
		{
			name:    "tiny run succeeds",
			args:    []string{"-workloads", "compress", "-insts", "2000"},
			want:    0,
			wantOut: "IPC",
		},
		{
			name:    "list workloads",
			args:    []string{"-list"},
			want:    0,
			wantOut: "compress",
		},
		{
			name:    "unknown machine",
			args:    []string{"-machine", "huge.9.99"},
			want:    2,
			wantErr: `unknown machine "huge.9.99"`,
		},
		{
			name:    "unknown feature preset",
			args:    []string{"-features", "REC/XX"},
			want:    2,
			wantErr: `unknown feature preset "REC/XX"`,
		},
		{
			name:    "unknown workload",
			args:    []string{"-workloads", "compress,notabench"},
			want:    2,
			wantErr: `unknown workload "notabench"`,
		},
		{
			name:    "unknown alt policy",
			args:    []string{"-altpolicy", "sometimes"},
			want:    2,
			wantErr: `unknown alt policy "sometimes"`,
		},
		{
			name:    "sampled run succeeds",
			args:    []string{"-sample", "-workloads", "gcc", "-insts", "50000", "-sample-period", "5000", "-sample-interval", "500", "-sample-warmup", "500"},
			want:    0,
			wantOut: "sampled",
		},
		{
			name:    "sampled mode wants one workload",
			args:    []string{"-sample", "-workloads", "compress,gcc", "-insts", "50000"},
			want:    1,
			wantErr: "one program",
		},
		{
			name:    "sampled schedule must fit the period",
			args:    []string{"-sample", "-workloads", "gcc", "-insts", "50000", "-sample-period", "1000", "-sample-interval", "800", "-sample-warmup", "800"},
			want:    1,
			wantErr: "exceed",
		},
		{
			name: "bad flag",
			args: []string{"-definitely-not-a-flag"},
			want: 2,
		},
		{
			name: "bad flag value",
			args: []string{"-insts", "many"},
			want: 2,
		},
		{
			name:    "stray positional argument",
			args:    []string{"compress"},
			want:    2,
			wantErr: "unexpected argument",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			got := run(tc.args, &stdout, &stderr)
			if got != tc.want {
				t.Fatalf("run(%q) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tc.args, got, tc.want, stdout.String(), stderr.String())
			}
			if tc.wantOut != "" && !strings.Contains(stdout.String(), tc.wantOut) {
				t.Errorf("stdout missing %q:\n%s", tc.wantOut, stdout.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantErr, stderr.String())
			}
		})
	}
}

// TestFaultFlags covers the fault-containment surface of the CLI: bad
// -watchdog values are flag errors; an expired -timeout and an
// interrupted context exit 1 but still print the partial statistics;
// -watchdog off runs clean.
func TestFaultFlags(t *testing.T) {
	t.Run("bad watchdog value", func(t *testing.T) {
		var out, errb strings.Builder
		if got := run([]string{"-watchdog", "sometimes"}, &out, &errb); got != 2 {
			t.Fatalf("exit %d, want 2", got)
		}
		if !strings.Contains(errb.String(), "-watchdog") {
			t.Errorf("stderr %q", errb.String())
		}
	})
	t.Run("watchdog off runs clean", func(t *testing.T) {
		var out, errb strings.Builder
		if got := run([]string{"-watchdog", "off", "-insts", "2000"}, &out, &errb); got != 0 {
			t.Fatalf("exit %d, want 0\n%s", got, errb.String())
		}
	})
	t.Run("explicit watchdog window runs clean", func(t *testing.T) {
		var out, errb strings.Builder
		if got := run([]string{"-watchdog", "100000", "-insts", "2000"}, &out, &errb); got != 0 {
			t.Fatalf("exit %d, want 0\n%s", got, errb.String())
		}
	})
	t.Run("expired timeout prints partial stats", func(t *testing.T) {
		var out, errb strings.Builder
		got := run([]string{"-timeout", "1ns", "-insts", "5000000"}, &out, &errb)
		if got != 1 {
			t.Fatalf("exit %d, want 1\nstderr:\n%s", got, errb.String())
		}
		if !strings.Contains(errb.String(), "deadline") || !strings.Contains(errb.String(), "partial statistics") {
			t.Errorf("stderr %q", errb.String())
		}
		if !strings.Contains(out.String(), "IPC") {
			t.Error("partial statistics not printed")
		}
	})
	t.Run("canceled context prints partial stats", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var out, errb strings.Builder
		got := runCtx(ctx, []string{"-insts", "5000000"}, &out, &errb)
		if got != 1 {
			t.Fatalf("exit %d, want 1\nstderr:\n%s", got, errb.String())
		}
		if !strings.Contains(errb.String(), "interrupted") {
			t.Errorf("stderr %q", errb.String())
		}
		if !strings.Contains(out.String(), "IPC") {
			t.Error("partial statistics not printed")
		}
	})
}
