// Command recyclesim runs one simulation: a set of workloads on a
// machine configuration with a feature preset, printing IPC and the
// recycling statistics.
//
// Usage:
//
//	recyclesim -machine big.2.16 -features REC/RS/RU -workloads compress,gcc -insts 500000
//
// Exit status is 0 on success, 1 when the simulation itself fails, and
// 2 on bad flags or unknown machine/feature/workload names.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"recyclesim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("recyclesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	machine := fs.String("machine", "big.2.16", "machine configuration: "+strings.Join(recyclesim.MachineNames(), ", "))
	features := fs.String("features", "REC/RS/RU", "architecture: "+strings.Join(recyclesim.PresetNames(), ", "))
	workloads := fs.String("workloads", "compress", "comma-separated benchmark names (see -list)")
	insts := fs.Uint64("insts", 500_000, "committed-instruction budget")
	policy := fs.String("altpolicy", "nostop", "alternate-path policy: stop, fetch, nostop")
	limit := fs.Int("altlimit", 32, "alternate-path instruction limit")
	list := fs.Bool("list", false, "list built-in workloads and exit")
	metricsJSON := fs.String("metrics", "", "write a JSON telemetry snapshot to this file (\"-\" for stdout)")
	metricsText := fs.String("metrics-text", "", "write a Prometheus-style text snapshot to this file (\"-\" for stdout)")
	flightrec := fs.Int("flightrec", 0, "record the last N pipeline events and include them in snapshots")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "recyclesim: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	if *list {
		for _, n := range recyclesim.Workloads() {
			fmt.Fprintln(stdout, n)
		}
		return 0
	}

	mach, ok := recyclesim.LookupMachine(*machine)
	if !ok {
		fmt.Fprintf(stderr, "recyclesim: unknown machine %q (known: %s)\n",
			*machine, strings.Join(recyclesim.MachineNames(), ", "))
		return 2
	}
	feat, ok := recyclesim.LookupPreset(*features)
	if !ok {
		fmt.Fprintf(stderr, "recyclesim: unknown feature preset %q (known: %s)\n",
			*features, strings.Join(recyclesim.PresetNames(), ", "))
		return 2
	}
	switch *policy {
	case "stop":
		feat.AltPolicy = recyclesim.AltStop
	case "fetch":
		feat.AltPolicy = recyclesim.AltFetch
	case "nostop":
		feat.AltPolicy = recyclesim.AltNoStop
	default:
		fmt.Fprintf(stderr, "recyclesim: unknown alt policy %q (known: stop, fetch, nostop)\n", *policy)
		return 2
	}
	feat.AltLimit = *limit

	names := strings.Split(*workloads, ",")
	known := map[string]bool{}
	for _, n := range recyclesim.Workloads() {
		known[n] = true
	}
	for _, n := range names {
		if !known[n] {
			fmt.Fprintf(stderr, "recyclesim: unknown workload %q (known: %s)\n",
				n, strings.Join(recyclesim.Workloads(), ", "))
			return 2
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}

	wantMetrics := *metricsJSON != "" || *metricsText != ""
	var tel *recyclesim.Telemetry
	var ring *recyclesim.FlightRecorder
	if wantMetrics {
		tel = &recyclesim.Telemetry{Hists: true}
	}
	if *flightrec > 0 {
		ring = recyclesim.NewFlightRecorder(*flightrec)
	}

	res, err := recyclesim.Run(recyclesim.Options{
		Machine:        mach,
		Features:       feat,
		Workloads:      names,
		MaxInsts:       *insts,
		Telemetry:      tel,
		FlightRecorder: ring,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	if wantMetrics {
		snap := &recyclesim.Snapshot{
			Name:    strings.Join(names, "+") + "/" + recyclesim.FeatureName(feat),
			Stats:   res,
			Metrics: tel,
			Ring:    ring,
		}
		write := func(path string, f func(io.Writer) error) error {
			if path == "" {
				return nil
			}
			if path == "-" {
				return f(stdout)
			}
			out, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := f(out); err != nil {
				out.Close()
				return err
			}
			return out.Close()
		}
		if err := write(*metricsJSON, snap.WriteJSON); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := write(*metricsText, snap.WriteText); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	if *metricsJSON == "-" || *metricsText == "-" {
		return 0 // snapshot owns stdout; keep it machine-readable
	}
	fmt.Fprintf(stdout, "machine    %s\n", *machine)
	fmt.Fprintf(stdout, "features   %s (alt %s-%d)\n", recyclesim.FeatureName(feat), feat.AltPolicy, feat.AltLimit)
	fmt.Fprintf(stdout, "workloads  %s\n", strings.Join(names, ", "))
	fmt.Fprintf(stdout, "cycles     %d\n", res.Cycles)
	fmt.Fprintf(stdout, "committed  %d\n", res.Committed)
	fmt.Fprintf(stdout, "IPC        %.3f\n", res.IPC())
	fmt.Fprintf(stdout, "mispredict %.2f%%  (coverage %.1f%%)\n", 100*res.MispredictRate(), res.BranchMissCoverage())
	fmt.Fprintf(stdout, "recycled   %.1f%% of renamed;  reused %.1f%%\n", res.PctRecycled(), res.PctReused())
	fmt.Fprintf(stdout, "forks      %d (respawns %d)  merges %d (%.1f%% backward)\n",
		res.Forks, res.Respawns, res.Merges, res.PctBackMerges())
	fmt.Fprintf(stdout, "renamed    %d  squashed %d  fetched %d\n", res.Renamed, res.Squashed, res.Fetched)
	fmt.Fprintf(stdout, "stalls     regs=%d al=%d iq=%d reclaims=%d\n",
		res.RenameStallRegs, res.RenameStallAL, res.IQFullStalls, res.Reclaims)
	fmt.Fprintf(stdout, "forkfail   noctx=%d reusepin=%d\n", res.ForkFailNoCtx, res.ForkFailReuse)
	for i, n := range res.PerProgram {
		fmt.Fprintf(stdout, "program %d  committed %d\n", i, n)
	}
	return 0
}
