// Command recyclesim runs one simulation: a set of workloads on a
// machine configuration with a feature preset, printing IPC and the
// recycling statistics.
//
// Usage:
//
//	recyclesim -machine big.2.16 -features REC/RS/RU -workloads compress,gcc -insts 500000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"recyclesim"
)

func main() {
	machine := flag.String("machine", "big.2.16", "machine configuration: big.2.16, big.1.8, small.1.8, small.2.8")
	features := flag.String("features", "REC/RS/RU", "architecture: SMT, TME, REC, REC/RU, REC/RS, REC/RS/RU")
	workloads := flag.String("workloads", "compress", "comma-separated benchmark names (see -list)")
	insts := flag.Uint64("insts", 500_000, "committed-instruction budget")
	policy := flag.String("altpolicy", "nostop", "alternate-path policy: stop, fetch, nostop")
	limit := flag.Int("altlimit", 32, "alternate-path instruction limit")
	list := flag.Bool("list", false, "list built-in workloads and exit")
	flag.Parse()

	if *list {
		for _, n := range recyclesim.Workloads() {
			fmt.Println(n)
		}
		return
	}

	feat := recyclesim.PresetByName(*features)
	switch *policy {
	case "stop":
		feat.AltPolicy = recyclesim.AltStop
	case "fetch":
		feat.AltPolicy = recyclesim.AltFetch
	case "nostop":
		feat.AltPolicy = recyclesim.AltNoStop
	default:
		fmt.Fprintf(os.Stderr, "unknown alt policy %q\n", *policy)
		os.Exit(2)
	}
	feat.AltLimit = *limit

	names := strings.Split(*workloads, ",")
	res, err := recyclesim.Run(recyclesim.Options{
		Machine:   recyclesim.MachineByName(*machine),
		Features:  feat,
		Workloads: names,
		MaxInsts:  *insts,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("machine    %s\n", *machine)
	fmt.Printf("features   %s (alt %s-%d)\n", recyclesim.FeatureName(feat), feat.AltPolicy, feat.AltLimit)
	fmt.Printf("workloads  %s\n", strings.Join(names, ", "))
	fmt.Printf("cycles     %d\n", res.Cycles)
	fmt.Printf("committed  %d\n", res.Committed)
	fmt.Printf("IPC        %.3f\n", res.IPC())
	fmt.Printf("mispredict %.2f%%  (coverage %.1f%%)\n", 100*res.MispredictRate(), res.BranchMissCoverage())
	fmt.Printf("recycled   %.1f%% of renamed;  reused %.1f%%\n", res.PctRecycled(), res.PctReused())
	fmt.Printf("forks      %d (respawns %d)  merges %d (%.1f%% backward)\n",
		res.Forks, res.Respawns, res.Merges, res.PctBackMerges())
	fmt.Printf("renamed    %d  squashed %d  fetched %d\n", res.Renamed, res.Squashed, res.Fetched)
	fmt.Printf("stalls     regs=%d al=%d iq=%d reclaims=%d\n",
		res.RenameStallRegs, res.RenameStallAL, res.IQFullStalls, res.Reclaims)
	fmt.Printf("forkfail   noctx=%d reusepin=%d\n", res.ForkFailNoCtx, res.ForkFailReuse)
	for i, n := range res.PerProgram {
		fmt.Printf("program %d  committed %d\n", i, n)
	}
}
