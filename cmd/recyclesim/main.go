// Command recyclesim runs one simulation: a set of workloads on a
// machine configuration with a feature preset, printing IPC and the
// recycling statistics.
//
// Usage:
//
//	recyclesim -machine big.2.16 -features REC/RS/RU -workloads compress,gcc -insts 500000
//
// Sampled mode (-sample) fast-forwards on the golden emulator with
// functional warming and estimates IPC from periodic detailed
// intervals; see -sample-period, -sample-interval, -sample-warmup:
//
//	recyclesim -sample -features REC/RS/RU -workloads gcc -insts 2000000
//
// Exit status is 0 on success, 1 when the simulation itself fails, and
// 2 on bad flags or unknown machine/feature/workload names.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"recyclesim"
	"recyclesim/internal/obs/server"
	"recyclesim/internal/sweep"
)

// parseRange parses a "lo:hi" bound pair ("" means unbounded, values
// accept 0x-prefixed hex).
func parseRange(s string) (lo, hi uint64, err error) {
	if s == "" {
		return 0, 0, nil
	}
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("%q is not of the form lo:hi", s)
	}
	if lo, err = strconv.ParseUint(a, 0, 64); err != nil {
		return 0, 0, fmt.Errorf("bad lower bound %q: %v", a, err)
	}
	if hi, err = strconv.ParseUint(b, 0, 64); err != nil {
		return 0, 0, fmt.Errorf("bad upper bound %q: %v", b, err)
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("range %q is empty (hi < lo)", s)
	}
	return lo, hi, nil
}

func main() {
	// SIGINT cancels the run cooperatively: the simulation stops at its
	// next cancellation poll and the partial statistics are printed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	return runCtx(context.Background(), args, stdout, stderr)
}

func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("recyclesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	machine := fs.String("machine", "big.2.16", "machine configuration: "+strings.Join(recyclesim.MachineNames(), ", "))
	features := fs.String("features", "REC/RS/RU", "architecture: "+strings.Join(recyclesim.PresetNames(), ", "))
	workloads := fs.String("workloads", "compress", "comma-separated benchmark names (see -list)")
	insts := fs.Uint64("insts", 500_000, "committed-instruction budget")
	policy := fs.String("altpolicy", "nostop", "alternate-path policy: stop, fetch, nostop")
	limit := fs.Int("altlimit", 32, "alternate-path instruction limit")
	list := fs.Bool("list", false, "list built-in workloads and exit")
	metricsJSON := fs.String("metrics", "", "write a JSON telemetry snapshot to this file (\"-\" for stdout)")
	metricsText := fs.String("metrics-text", "", "write a Prometheus-style text snapshot to this file (\"-\" for stdout)")
	flightrec := fs.Int("flightrec", 0, "record the last N pipeline events and include them in snapshots")
	pipetraceOut := fs.String("pipetrace", "", "write a Chrome trace_event JSON pipetrace to this file (\"-\" for stdout; open in Perfetto)")
	pipetraceKonata := fs.String("pipetrace-konata", "", "write a Konata-style text pipetrace to this file (\"-\" for stdout)")
	pipetraceSample := fs.Uint64("pipetrace-sample", 1, "trace 1 in N renamed instructions")
	pipetracePC := fs.String("pipetrace-pc", "", "restrict tracing to PC range \"lo:hi\" (0x-prefixed hex ok)")
	pipetraceCycles := fs.String("pipetrace-cycles", "", "restrict tracing to instructions renamed in cycle window \"lo:hi\"")
	pipetraceMax := fs.Int("pipetrace-max", 1<<20, "hard cap on traced instructions (excess counted, not recorded)")
	sampleMode := fs.Bool("sample", false, "sampled simulation: fast-forward on the emulator with functional warming, estimate IPC from periodic detailed intervals")
	samplePeriod := fs.Uint64("sample-period", 0, "sampling period P in instructions (0 = default 20000)")
	sampleInterval := fs.Uint64("sample-interval", 0, "measured instructions per interval L (0 = default 1000)")
	sampleWarmup := fs.Uint64("sample-warmup", 0, "detailed detached-warmup length W per interval (0 = default 1000)")
	obsListen := fs.String("obs-listen", "", "serve /metrics, /progress, /healthz and pprof on this address during the run (e.g. \":0\")")
	timeout := fs.Duration("timeout", 0, "wall-clock budget; an expired run exits 1 with its partial statistics")
	watchdog := fs.String("watchdog", "", "forward-progress window in cycles: a number, or \"off\" (default 50000)")
	crashDir := fs.String("crash-dir", "", "persist a crash bundle here when the run panics or livelocks")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "recyclesim: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	if *list {
		for _, n := range recyclesim.Workloads() {
			fmt.Fprintln(stdout, n)
		}
		return 0
	}

	mach, ok := recyclesim.LookupMachine(*machine)
	if !ok {
		fmt.Fprintf(stderr, "recyclesim: unknown machine %q (known: %s)\n",
			*machine, strings.Join(recyclesim.MachineNames(), ", "))
		return 2
	}
	feat, ok := recyclesim.LookupPreset(*features)
	if !ok {
		fmt.Fprintf(stderr, "recyclesim: unknown feature preset %q (known: %s)\n",
			*features, strings.Join(recyclesim.PresetNames(), ", "))
		return 2
	}
	switch *policy {
	case "stop":
		feat.AltPolicy = recyclesim.AltStop
	case "fetch":
		feat.AltPolicy = recyclesim.AltFetch
	case "nostop":
		feat.AltPolicy = recyclesim.AltNoStop
	default:
		fmt.Fprintf(stderr, "recyclesim: unknown alt policy %q (known: stop, fetch, nostop)\n", *policy)
		return 2
	}
	feat.AltLimit = *limit
	switch *watchdog {
	case "":
	case "off":
		feat.WatchdogCycles = recyclesim.WatchdogOff
	default:
		n, err := strconv.ParseUint(*watchdog, 0, 64)
		if err != nil || n == 0 {
			fmt.Fprintf(stderr, "recyclesim: bad -watchdog %q (want a positive cycle count or \"off\")\n", *watchdog)
			return 2
		}
		feat.WatchdogCycles = n
	}

	names := strings.Split(*workloads, ",")
	known := map[string]bool{}
	for _, n := range recyclesim.Workloads() {
		known[n] = true
	}
	for _, n := range names {
		if !known[n] {
			fmt.Fprintf(stderr, "recyclesim: unknown workload %q (known: %s)\n",
				n, strings.Join(recyclesim.Workloads(), ", "))
			return 2
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}

	if *sampleMode {
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		res, err := recyclesim.RunSampledContext(ctx, recyclesim.Options{
			Machine:   mach,
			Features:  feat,
			Workloads: names,
			MaxInsts:  *insts,
			Sampling: &recyclesim.Sampling{
				Period:      *samplePeriod,
				IntervalLen: *sampleInterval,
				WarmupLen:   *sampleWarmup,
			},
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "machine    %s\n", *machine)
		fmt.Fprintf(stdout, "features   %s (alt %s-%d)\n", recyclesim.FeatureName(feat), feat.AltPolicy, feat.AltLimit)
		fmt.Fprintf(stdout, "workloads  %s\n", strings.Join(names, ", "))
		if err := res.WriteText(stdout); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}

	wantMetrics := *metricsJSON != "" || *metricsText != ""
	var tel *recyclesim.Telemetry
	var ring *recyclesim.FlightRecorder
	if wantMetrics {
		tel = &recyclesim.Telemetry{Hists: true}
	}
	if *flightrec > 0 {
		ring = recyclesim.NewFlightRecorder(*flightrec)
	}

	var tracer *recyclesim.PipeTracer
	if *pipetraceOut != "" || *pipetraceKonata != "" {
		cfg := recyclesim.PipeTraceConfig{
			SampleEvery: *pipetraceSample,
			MaxRecords:  *pipetraceMax,
		}
		var err error
		if cfg.PCMin, cfg.PCMax, err = parseRange(*pipetracePC); err != nil {
			fmt.Fprintf(stderr, "recyclesim: bad -pipetrace-pc: %v\n", err)
			return 2
		}
		if cfg.CycleMin, cfg.CycleMax, err = parseRange(*pipetraceCycles); err != nil {
			fmt.Fprintf(stderr, "recyclesim: bad -pipetrace-cycles: %v\n", err)
			return 2
		}
		tracer = recyclesim.NewPipeTracer(cfg)
	}

	snapName := strings.Join(names, "+") + "/" + recyclesim.FeatureName(feat)
	var snapshotHook func(*recyclesim.Snapshot)
	var prog *sweep.Progress
	if *obsListen != "" {
		prog = &sweep.Progress{}
		prog.SetTotal(1)
		prog.StartCell(snapName)
		srv := server.New(prog)
		if err := srv.Start(*obsListen); err != nil {
			fmt.Fprintf(stderr, "recyclesim: -obs-listen: %v\n", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "recyclesim: observability server on http://%s\n", srv.Addr())
		snapshotHook = func(sn *recyclesim.Snapshot) {
			sn.Name = snapName
			prog.SetInsts(sn.Stats.Committed)
			srv.Publish(sn)
		}
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := recyclesim.RunContext(ctx, recyclesim.Options{
		Machine:        mach,
		Features:       feat,
		Workloads:      names,
		MaxInsts:       *insts,
		Telemetry:      tel,
		FlightRecorder: ring,
		PipeTrace:      tracer,
		SnapshotHook:   snapshotHook,
		CrashDir:       *crashDir,
	})
	exit := 0
	if err != nil {
		exit = 1
		fmt.Fprintln(stderr, err)
		if res == nil {
			// Panic or configuration failure: no usable state to print.
			return 1
		}
		// Clean stop (cancel, deadline, livelock): the partial
		// statistics and telemetry below are internally consistent.
		switch {
		case errors.Is(err, recyclesim.ErrCanceled):
			fmt.Fprintln(stderr, "recyclesim: interrupted; partial statistics follow")
		case errors.Is(err, recyclesim.ErrDeadline):
			fmt.Fprintln(stderr, "recyclesim: -timeout expired; partial statistics follow")
		case errors.Is(err, recyclesim.ErrLivelock):
			fmt.Fprintln(stderr, "recyclesim: statistics up to the livelock follow")
		}
	}
	if prog != nil {
		prog.FinishCell(0)
	}

	write := func(path string, f func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		if path == "-" {
			return f(stdout)
		}
		out, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := f(out); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	}

	if wantMetrics {
		snap := &recyclesim.Snapshot{
			Name:    snapName,
			Stats:   res,
			Metrics: tel,
			Ring:    ring,
		}
		if err := write(*metricsJSON, snap.WriteJSON); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := write(*metricsText, snap.WriteText); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	if tracer != nil {
		chrome := func(w io.Writer) error { return tracer.WriteChrome(w, res.Cycles) }
		konata := func(w io.Writer) error { return tracer.WriteKonata(w, res.Cycles) }
		if err := write(*pipetraceOut, chrome); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := write(*pipetraceKonata, konata); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if dropped := tracer.TruncatedRecords(); dropped > 0 {
			fmt.Fprintf(stderr, "recyclesim: pipetrace truncated: %d instruction(s) past -pipetrace-max %d\n",
				dropped, *pipetraceMax)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	if *metricsJSON == "-" || *metricsText == "-" || *pipetraceOut == "-" || *pipetraceKonata == "-" {
		return exit // snapshot/trace owns stdout; keep it machine-readable
	}
	fmt.Fprintf(stdout, "machine    %s\n", *machine)
	fmt.Fprintf(stdout, "features   %s (alt %s-%d)\n", recyclesim.FeatureName(feat), feat.AltPolicy, feat.AltLimit)
	fmt.Fprintf(stdout, "workloads  %s\n", strings.Join(names, ", "))
	fmt.Fprintf(stdout, "cycles     %d\n", res.Cycles)
	fmt.Fprintf(stdout, "committed  %d\n", res.Committed)
	fmt.Fprintf(stdout, "IPC        %.3f\n", res.IPC())
	fmt.Fprintf(stdout, "mispredict %.2f%%  (coverage %.1f%%)\n", 100*res.MispredictRate(), res.BranchMissCoverage())
	fmt.Fprintf(stdout, "recycled   %.1f%% of renamed;  reused %.1f%%\n", res.PctRecycled(), res.PctReused())
	fmt.Fprintf(stdout, "forks      %d (respawns %d)  merges %d (%.1f%% backward)\n",
		res.Forks, res.Respawns, res.Merges, res.PctBackMerges())
	fmt.Fprintf(stdout, "renamed    %d  squashed %d  fetched %d\n", res.Renamed, res.Squashed, res.Fetched)
	fmt.Fprintf(stdout, "stalls     regs=%d al=%d iq=%d reclaims=%d\n",
		res.RenameStallRegs, res.RenameStallAL, res.IQFullStalls, res.Reclaims)
	fmt.Fprintf(stdout, "forkfail   noctx=%d reusepin=%d\n", res.ForkFailNoCtx, res.ForkFailReuse)
	for i, n := range res.PerProgram {
		fmt.Fprintf(stdout, "program %d  committed %d\n", i, n)
	}
	return exit
}
