package recyclesim

import (
	"context"
	"fmt"

	"recyclesim/internal/sample"
	"recyclesim/internal/workload"
)

// Sampling configures SMARTS-style sampled simulation: the golden
// emulator fast-forwards between short detailed measurement intervals
// while continuously warming the branch predictor, confidence
// estimator, and caches, and whole-program IPC is estimated from the
// per-interval samples with a Student-t confidence interval.
//
// The schedule is systematic and seedless — with period P, interval
// length L, and detached warmup W, interval k measures the last L
// instructions of [k*P, (k+1)*P) — so sampled runs are byte-identically
// deterministic across repetitions and worker counts.
type Sampling struct {
	// Period is the sampling period P in instructions (default 20_000).
	Period uint64
	// IntervalLen is the measured instructions per interval L (default
	// 1_000).
	IntervalLen uint64
	// WarmupLen is the detailed detached-warmup length W preceding each
	// measured region (default 1_000).
	WarmupLen uint64
	// Confidence selects the Student-t level for the IPC interval:
	// 0.90, 0.95 (default), or 0.99.
	Confidence float64
	// Workers bounds interval-simulation parallelism (<= 0 selects
	// GOMAXPROCS).
	Workers int
}

// SampledResult is a sampled run's estimate: per-interval CPI samples,
// the mean IPC with its confidence interval, coverage accounting, and
// the summed measured-region statistics (so recycling decompositions
// still work on sampled runs).
type SampledResult = sample.Result

// SampledInterval is one detailed measurement interval's result.
type SampledInterval = sample.Interval

// RunSampled executes one sampled simulation and returns the IPC
// estimate.  It honours Options.Machine, Features, Workloads/Programs,
// MaxInsts, and Context; sampled mode simulates exactly one program
// (interval seeding restores a single architectural state).  The
// Options.Sampling field supplies the schedule; a nil Sampling uses
// the defaults.
func RunSampled(o Options) (*SampledResult, error) {
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return RunSampledContext(ctx, o)
}

// RunSampledContext is RunSampled with cooperative cancellation: the
// checkpoint pass polls ctx between periods and each detailed interval
// polls on the core's cycle-counted cadence.  An uncancelled sampled
// run is byte-identical with or without a context attached.
func RunSampledContext(ctx context.Context, o Options) (*SampledResult, error) {
	progs := o.Programs
	if len(progs) == 0 {
		if len(o.Workloads) == 0 {
			return nil, fmt.Errorf("recyclesim: no workloads given")
		}
		var err error
		progs, err = workload.MixPrograms(o.Workloads)
		if err != nil {
			return nil, err
		}
	}
	if len(progs) != 1 {
		return nil, fmt.Errorf("recyclesim: sampled mode simulates one program, got %d", len(progs))
	}
	if o.MaxInsts == 0 {
		o.MaxInsts = 200_000
	}

	cfg := sample.Config{}
	if o.Sampling != nil {
		cfg.Period = o.Sampling.Period
		cfg.IntervalLen = o.Sampling.IntervalLen
		cfg.WarmupLen = o.Sampling.WarmupLen
		cfg.Confidence = o.Sampling.Confidence
		cfg.Workers = o.Sampling.Workers
	}
	if ctx != nil && ctx.Done() != nil {
		cfg.Poll = ctx.Err
	}
	return sample.Run(o.Machine, o.Features, progs[0], o.MaxInsts, cfg)
}
