module recyclesim

go 1.22
