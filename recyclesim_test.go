package recyclesim

import (
	"testing"
)

func TestRunBasic(t *testing.T) {
	res, err := Run(Options{
		Machine:   MachineByName("big.2.16"),
		Features:  PresetByName("REC/RS/RU"),
		Workloads: []string{"compress"},
		MaxInsts:  20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed < 20_000 {
		t.Errorf("committed %d", res.Committed)
	}
	if res.IPC() <= 0 {
		t.Error("IPC should be positive")
	}
	if res.Recycled == 0 {
		t.Error("recycling enabled but nothing recycled")
	}
}

func TestRunNoWorkloads(t *testing.T) {
	if _, err := Run(Options{Machine: MachineByName("big.2.16")}); err == nil {
		t.Error("expected error")
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	_, err := Run(Options{
		Machine:   MachineByName("big.2.16"),
		Features:  SMT,
		Workloads: []string{"nope"},
	})
	if err == nil {
		t.Error("expected error")
	}
}

func TestMachineByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MachineByName("bogus")
}

func TestWorkloadsList(t *testing.T) {
	ws := Workloads()
	if len(ws) != 8 || ws[0] != "compress" || ws[7] != "vortex" {
		t.Errorf("workloads = %v", ws)
	}
	// The returned slice is a copy; mutating it must not corrupt the
	// library's list.
	ws[0] = "corrupted"
	if Workloads()[0] != "compress" {
		t.Error("Workloads returned an aliased slice")
	}
}

func TestFeaturePresets(t *testing.T) {
	if FeatureName(RECRSRU) != "REC/RS/RU" || FeatureName(SMT) != "SMT" {
		t.Error("preset naming")
	}
}

func TestCustomProgram(t *testing.T) {
	p, err := WorkloadByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{
		Machine:  MachineByName("small.1.8"),
		Features: TME,
		Programs: []*Program{p},
		MaxInsts: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Error("nothing committed")
	}
}

func TestNewCoreStepping(t *testing.T) {
	p, _ := WorkloadByName("vortex")
	c, err := NewCore(MachineByName("big.2.16"), SMT, []*Program{p})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		c.Cycle()
	}
	if c.Stats.Committed == 0 {
		t.Error("cycle stepping committed nothing")
	}
	if c.CycleCount() != 2000 {
		t.Errorf("cycle count %d", c.CycleCount())
	}
}
