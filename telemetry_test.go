package recyclesim

import (
	"bytes"
	"testing"
)

// telemetrySnapshot runs one instrumented simulation and renders both
// exporter formats.
func telemetrySnapshot(t *testing.T) (jsonOut, textOut []byte) {
	t.Helper()
	tel := &Telemetry{Hists: true}
	ring := NewFlightRecorder(512)
	res, err := Run(Options{
		Machine:        MachineByName("big.2.16"),
		Features:       PresetByName("REC/RS/RU"),
		Workloads:      []string{"compress"},
		MaxInsts:       20_000,
		Telemetry:      tel,
		FlightRecorder: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{Name: "compress/REC/RS/RU", Stats: res, Metrics: tel, Ring: ring}
	var jb, tb bytes.Buffer
	if err := snap.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteText(&tb); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), tb.Bytes()
}

// TestTelemetryExportDeterminism is the determinism witness for the
// whole telemetry path: two identical instrumented runs — ring and
// histograms on — must export byte-identical JSON and text documents.
func TestTelemetryExportDeterminism(t *testing.T) {
	j1, t1 := telemetrySnapshot(t)
	j2, t2 := telemetrySnapshot(t)
	if !bytes.Equal(j1, j2) {
		t.Error("JSON exports differ between identical runs")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("text exports differ between identical runs")
	}
	for _, want := range []string{"slot_cycles", "flight_recorder", "al_occupancy", `"ipc"`} {
		if !bytes.Contains(j1, []byte(want)) {
			t.Errorf("JSON export missing %q section", want)
		}
	}
	for _, want := range []string{"sim_slot_cycles_total", "sim_al_occupancy_bucket", "sim_committed"} {
		if !bytes.Contains(t1, []byte(want)) {
			t.Errorf("text export missing %q", want)
		}
	}
}
