// Quickstart: simulate one benchmark on the paper's baseline machine
// and show what instruction recycling buys over plain SMT and TME.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"recyclesim"
)

func main() {
	machine := recyclesim.MachineByName("big.2.16")

	fmt.Println("compress on big.2.16, 300k instructions:")
	fmt.Printf("%-10s %8s %12s %10s %8s\n", "config", "IPC", "recycled%", "reused%", "forks")

	var smtIPC, best float64
	for _, preset := range []string{"SMT", "TME", "REC", "REC/RU", "REC/RS", "REC/RS/RU"} {
		res, err := recyclesim.Run(recyclesim.Options{
			Machine:   machine,
			Features:  recyclesim.PresetByName(preset),
			Workloads: []string{"compress"},
			MaxInsts:  300_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8.3f %11.1f%% %9.1f%% %8d\n",
			preset, res.IPC(), res.PctRecycled(), res.PctReused(), res.Forks)
		if preset == "SMT" {
			smtIPC = res.IPC()
		}
		if res.IPC() > best {
			best = res.IPC()
		}
	}
	fmt.Printf("\nbest configuration is %.1f%% faster than SMT\n", 100*(best/smtIPC-1))
}
