// Multiprogram: the paper's headline multi-thread result.  With
// several programs sharing the machine, fetch bandwidth becomes the
// contended resource; TME's benefit fades while recycling's grows
// ("easing the contention for fetch resources").
//
//	go run ./examples/multiprogram
package main

import (
	"fmt"
	"log"
	"strings"

	"recyclesim"
)

func main() {
	machine := recyclesim.MachineByName("big.2.16")

	for _, n := range []int{1, 2, 4} {
		fmt.Printf("=== %d program(s) ===\n", n)
		var mixes [][]string
		if n == 1 {
			for _, w := range recyclesim.Workloads() {
				mixes = append(mixes, []string{w})
			}
		} else {
			mixes = recyclesim.Mixes(n)
		}

		for _, preset := range []string{"SMT", "TME", "REC/RS/RU"} {
			total := 0.0
			for _, mix := range mixes {
				res, err := recyclesim.Run(recyclesim.Options{
					Machine:   machine,
					Features:  recyclesim.PresetByName(preset),
					Workloads: mix,
					MaxInsts:  150_000,
				})
				if err != nil {
					log.Fatal(err)
				}
				total += res.IPC()
			}
			fmt.Printf("  %-10s avg IPC %.3f  (over %d mixes)\n",
				preset, total/float64(len(mixes)), len(mixes))
		}
	}

	// Show the per-program fairness of one 4-program run.
	mix := recyclesim.Mixes(4)[0]
	res, err := recyclesim.Run(recyclesim.Options{
		Machine:   machine,
		Features:  recyclesim.PresetByName("REC/RS/RU"),
		Workloads: mix,
		MaxInsts:  300_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-program commits for mix [%s]:\n", strings.Join(mix, ", "))
	for i, nCommitted := range res.PerProgram {
		fmt.Printf("  %-10s %d\n", mix[i], nCommitted)
	}
}
