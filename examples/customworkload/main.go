// Customworkload: bring your own program.  Build a kernel with the
// assembler (or the text syntax), run it on any machine/feature
// combination, and read the recycling statistics.  This is the path a
// downstream user takes to evaluate recycling on their own code.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"recyclesim"
	"recyclesim/internal/asm"
)

// A histogram kernel: a tight loop (backward-branch recycling fodder)
// with one data-dependent branch (TME fodder).
const source = `
.array data   2048 7 3 9 1 4 12 5 8 2 6 11 0 13 10 15 14
.array hist   16
.word  outliers 0

    la   r20, data
    la   r21, hist
    la   r22, outliers
    li   r10, 0          ; index
    li   r23, 1099511627776  ; effectively infinite iteration count
loop:
    andi r11, r10, 2047
    slli r12, r11, 3
    add  r1, r20, r12
    ld   r2, 0(r1)       ; v = data[i & 2047]
    andi r3, r2, 15
    slli r4, r3, 3
    add  r5, r21, r4
    ld   r6, 0(r5)
    addi r6, r6, 1
    st   r6, 0(r5)       ; hist[v & 15]++
    slti r7, r2, 12      ; data-dependent: most values are small
    bne  r7, r0, next
    ld   r8, 0(r22)
    addi r8, r8, 1
    st   r8, 0(r22)      ; outliers++
next:
    addi r10, r10, 1
    bne  r10, r23, loop
    halt
`

func main() {
	prog, err := asm.Assemble("histogram", source)
	if err != nil {
		log.Fatal(err)
	}

	for _, preset := range []string{"SMT", "REC/RS/RU"} {
		res, err := recyclesim.Run(recyclesim.Options{
			Machine:  recyclesim.MachineByName("big.2.16"),
			Features: recyclesim.PresetByName(preset),
			Programs: []*recyclesim.Program{prog},
			MaxInsts: 200_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s IPC %.3f  recycled %.1f%%  backward merges %.1f%%  mispredict %.2f%%\n",
			preset, res.IPC(), res.PctRecycled(), res.PctBackMerges(),
			100*res.MispredictRate())
	}
}
