// Fetchpolicy: reproduce the §5.2 experiment interactively — how long
// should an alternate path keep fetching (and executing) after its
// branch resolves?  The paper's finding: "a fetch limit of 8
// instructions for an alternate thread achieves some performance gain
// over fetching more ... all of the policies provide acceptable
// performance."
//
//	go run ./examples/fetchpolicy
package main

import (
	"fmt"
	"log"

	"recyclesim"
)

func main() {
	machine := recyclesim.MachineByName("big.2.16")
	policies := []recyclesim.AltPolicy{
		recyclesim.AltStop, recyclesim.AltFetch, recyclesim.AltNoStop,
	}

	fmt.Println("go + compress (2 programs), REC/RS/RU, big.2.16:")
	fmt.Printf("%-8s", "")
	for _, lim := range []int{8, 16, 32} {
		fmt.Printf(" %8d", lim)
	}
	fmt.Println()

	for _, pol := range policies {
		fmt.Printf("%-8s", pol)
		for _, lim := range []int{8, 16, 32} {
			feat := recyclesim.PresetByName("REC/RS/RU")
			feat.AltPolicy = pol
			feat.AltLimit = lim
			res, err := recyclesim.Run(recyclesim.Options{
				Machine:   machine,
				Features:  feat,
				Workloads: []string{"go", "compress"},
				MaxInsts:  300_000,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %8.3f", res.IPC())
		}
		fmt.Println()
	}
}
