package recyclesim

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// writeCrashBundle persists a SimError's full captured state as a
// plain-text post-mortem under dir, returning the file path.  The name
// derives from the configuration fingerprint and failure cycle, so a
// deterministic rerun of the same failure overwrites its own bundle
// instead of accumulating duplicates.
func writeCrashBundle(dir string, o Options, se *SimError, res *Result) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-c%d.crash.txt", sanitizeName(se.Fingerprint), se.Cycle))

	var b strings.Builder
	fmt.Fprintf(&b, "recyclesim crash bundle\n=======================\n")
	fmt.Fprintf(&b, "error: %s\n", se.Error())
	fmt.Fprintf(&b, "kind: %s\n", se.Kind.Error())
	fmt.Fprintf(&b, "cycle: %d\ncommitted: %d\n", se.Cycle, se.Committed)
	fmt.Fprintf(&b, "fingerprint: %s\n\n", se.Fingerprint)
	fmt.Fprintf(&b, "machine: %+v\n", o.Machine)
	fmt.Fprintf(&b, "features: %+v\n", o.Features)
	fmt.Fprintf(&b, "workloads: %v  programs: %d  maxinsts: %d  maxcycles: %d\n\n",
		o.Workloads, len(o.Programs), o.MaxInsts, o.MaxCycles)
	if res != nil {
		fmt.Fprintf(&b, "partial stats: %+v\n\n", *res)
	}
	if se.PanicValue != nil {
		fmt.Fprintf(&b, "panic: %v\n\nstack:\n%s\n", se.PanicValue, se.Stack)
	}
	if se.Dump != "" {
		fmt.Fprintf(&b, "%s\n", se.Dump)
	}
	if se.FlightDump != "" {
		fmt.Fprintf(&b, "%s\n", se.FlightDump)
	}
	if se.PipeTail != "" {
		fmt.Fprintf(&b, "%s\n", se.PipeTail)
	}

	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// sanitizeName maps a fingerprint onto the filename-safe alphabet.
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
