// Package recyclesim is a cycle-level simulator of instruction
// recycling on a multiple-path processor, reproducing Wallace, Tullsen
// and Calder, "Instruction Recycling on a Multiple-Path Processor"
// (HPCA 1999).
//
// The simulated machine is a wide simultaneous-multithreading (SMT)
// processor extended with Threaded Multipath Execution (TME): hardware
// contexts speculatively execute both sides of low-confidence branches.
// The paper's contribution — and this library's reason to exist — is
// *instruction recycling*: the per-context active lists already hold
// decoded traces of recently executed instructions, and when the fetch
// PC of a thread matches a stored trace's merge point, the trace is
// injected back into the rename stage, bypassing fetch and decode.
// Instructions whose operands are unchanged also *reuse* their old
// results and bypass issue and execution, and inactive traces can be
// *re-spawned* as new alternate paths without consuming fetch
// bandwidth.
//
// Quick start:
//
//	res, err := recyclesim.Run(recyclesim.Options{
//		Machine:   recyclesim.MachineByName("big.2.16"),
//		Features:  recyclesim.PresetByName("REC/RS/RU"),
//		Workloads: []string{"compress"},
//		MaxInsts:  200_000,
//	})
//	fmt.Printf("IPC %.3f\n", res.IPC())
//
// See the examples directory for multiprogram runs, fetch-policy
// sweeps, and custom workloads, and cmd/experiments for the harness
// that regenerates every figure and table in the paper.
package recyclesim

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"time"

	"recyclesim/internal/backoff"
	"recyclesim/internal/config"
	"recyclesim/internal/core"
	"recyclesim/internal/obs"
	"recyclesim/internal/obs/pipetrace"
	"recyclesim/internal/program"
	"recyclesim/internal/stats"
	"recyclesim/internal/sweep"
	"recyclesim/internal/workload"
)

// Machine is a hardware configuration (re-exported from the internal
// config package).
type Machine = config.Machine

// Features selects the architecture variant (SMT / TME / REC / RU /
// RS combinations and the alternate-path policy).
type Features = config.Features

// AltPolicy is the §5.2 alternate-path fetch policy.
type AltPolicy = config.AltPolicy

// Alternate-path policy values.
const (
	AltStop   = config.AltStop
	AltFetch  = config.AltFetch
	AltNoStop = config.AltNoStop
)

// WatchdogOff disables the forward-progress watchdog when assigned to
// Features.WatchdogCycles (zero selects the default window instead).
const WatchdogOff = config.WatchdogOff

// Result carries the statistics of one simulation run.
type Result = stats.Sim

// CommitInfo describes one committed instruction, delivered through
// Options.CommitHook in commit order.
type CommitInfo = core.CommitInfo

// Program is an assembled program image.
type Program = program.Program

// Telemetry aggregates the typed pipeline telemetry of one or more
// runs: per-cause stall attribution (every cycle x rename-slot charged
// to exactly one cause) and, when Hists is set before the run, the
// occupancy/stream-length/fork-lifetime histograms.
type Telemetry = obs.Metrics

// FlightRecorder is a fixed-size ring of typed pipeline events, dumped
// automatically when the invariant checker fires.
type FlightRecorder = obs.Ring

// Snapshot bundles a run's statistics, telemetry, and flight recorder
// for export; see WriteJSON and WriteText.
type Snapshot = obs.Snapshot

// NewFlightRecorder builds a recorder keeping the last n events
// (rounded up to a power of two).
func NewFlightRecorder(n int) *FlightRecorder { return obs.NewRing(n) }

// PipeTracer records per-instruction pipeline stage timelines (the
// cycle each traced instruction entered fetch/rename/queue/issue/
// writeback and how it left), exportable as Chrome trace_event JSON
// (WriteChrome) or Konata text (WriteKonata).
type PipeTracer = pipetrace.Recorder

// PipeTraceConfig bounds a PipeTracer: sampling rate, PC range, cycle
// window, and record caps.
type PipeTraceConfig = pipetrace.Config

// NewPipeTracer builds a pipetrace recorder; the zero config traces
// every instruction up to the default caps.
func NewPipeTracer(cfg PipeTraceConfig) *PipeTracer { return pipetrace.New(cfg) }

// Feature presets matching the paper's figure legends.
var (
	SMT     = config.SMT
	TME     = config.TME
	REC     = config.REC
	RECRU   = config.RECRU
	RECRS   = config.RECRS
	RECRSRU = config.RECRSRU
)

// LookupMachine resolves one of the paper's four machine design
// points: "big.2.16" (baseline), "big.1.8", "small.1.8", "small.2.8".
// The boolean reports whether the name is known; CLI front-ends use
// this form to reject bad input without panicking.
func LookupMachine(name string) (Machine, bool) {
	m, ok := config.Machines()[name]
	return m, ok
}

// MachineByName is LookupMachine for static call sites. Unknown names
// panic: configurations are static program data.
func MachineByName(name string) Machine {
	m, ok := LookupMachine(name)
	if !ok {
		panic(fmt.Sprintf("recyclesim: unknown machine %q", name))
	}
	return m
}

// LookupPreset resolves a figure-legend feature name ("SMT", "TME",
// "REC", "REC/RU", "REC/RS", "REC/RS/RU").  The boolean reports
// whether the name is known.
func LookupPreset(name string) (Features, bool) {
	return config.PresetByName(name)
}

// PresetByName is LookupPreset for static call sites; unknown names
// panic.
func PresetByName(name string) Features {
	f, ok := LookupPreset(name)
	if !ok {
		panic(fmt.Sprintf("recyclesim: unknown feature preset %q", name))
	}
	return f
}

// MachineNames lists the known machine configurations in sorted order.
func MachineNames() []string {
	ms := config.Machines()
	names := make([]string, 0, len(ms))
	//simlint:ignore determinism -- keys are sorted immediately below
	for n := range ms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PresetNames lists the feature presets in the paper's order.
func PresetNames() []string {
	return []string{"SMT", "TME", "REC", "REC/RU", "REC/RS", "REC/RS/RU"}
}

// FeatureName renders a Features value the way the paper labels it.
func FeatureName(f Features) string { return config.FeatureName(f) }

// Workloads lists the built-in benchmark names in the paper's order.
func Workloads() []string { return append([]string(nil), workload.Names...) }

// WorkloadByName builds one of the built-in SPEC95-like benchmarks.
func WorkloadByName(name string) (*Program, error) { return workload.ByName(name) }

// Mixes returns the eight multiprogram permutations of size n used by
// the multi-thread experiments.
func Mixes(n int) [][]string { return workload.Mixes(n) }

// Options configures one simulation run.
type Options struct {
	Machine  Machine
	Features Features

	// Workloads names built-in benchmarks (one partition each).
	// Programs, when non-empty, is used instead.
	Workloads []string
	Programs  []*Program

	// MaxInsts bounds total committed instructions (default 200k).
	MaxInsts uint64
	// MaxCycles bounds simulated cycles (default 4*MaxInsts).
	MaxCycles uint64

	// CommitHook, when non-nil, observes every committed instruction
	// in commit order.  Under RunBatch the hook is called from the
	// worker goroutine running this option's simulation, so a hook
	// shared between options must be written accordingly (or, better,
	// each option should get its own hook and sink).
	CommitHook func(CommitInfo)

	// Telemetry, when non-nil, receives the run's stall attribution
	// and (if Telemetry.Hists is set on entry) histograms, accumulated
	// via Add so one Telemetry can aggregate a batch.  Do not share a
	// Telemetry between concurrent RunBatch options.
	Telemetry *Telemetry

	// FlightRecorder, when non-nil, records typed pipeline events
	// during the run and is included in invariant-failure dumps.
	FlightRecorder *FlightRecorder

	// PipeTrace, when non-nil, records per-instruction stage timelines
	// during the run.  Do not share a tracer between concurrent
	// RunBatch options.
	PipeTrace *PipeTracer

	// SnapshotHook, when non-nil, receives an immutable copy of the
	// run's statistics and telemetry every SnapshotEvery committed
	// instructions (default 65536) and once more after the run — the
	// feed for a live observability server.  The copies never alias
	// simulator state, so the hook may hand them to other goroutines.
	SnapshotHook  func(*Snapshot)
	SnapshotEvery uint64

	// Context, when non-nil, is polled for cancellation every
	// PollEveryCycles simulated cycles; when it reports done, the run
	// stops at that cycle boundary and returns the partial Result plus
	// a *SimError wrapping ErrCanceled or ErrDeadline.  RunContext sets
	// this field; set it directly only when threading Options through
	// code that cannot change call signatures.
	Context context.Context

	// PollEveryCycles is the cancellation-poll cadence in simulated
	// cycles (default 4096).  The cadence is counted in cycles, not
	// wall time, so enabling cancellation never perturbs simulation
	// results — an uncancelled run is byte-identical with or without a
	// context attached.
	PollEveryCycles uint64

	// Sampling, when non-nil, supplies the schedule for RunSampled;
	// the detailed Run/RunContext/RunBatch entry points ignore it.  A
	// nil Sampling makes RunSampled use the default schedule.
	Sampling *Sampling

	// CrashDir, when non-empty, persists a plain-text crash bundle
	// (config, partial stats, machine dump, flight-recorder and
	// pipetrace tails, panic stack) for every run that fails with
	// ErrPanic or ErrLivelock.  The SimError's BundlePath records where
	// it landed.
	CrashDir string

	// hookCore, when non-nil, observes the constructed core after all
	// hooks are attached and before the first cycle.  Test-only fault
	// injection surface; deliberately unexported.
	hookCore func(*core.Core)
}

// Run executes one simulation and returns its statistics.
//
// On failure the error is a *SimError classifying the fault — match
// with errors.Is against ErrCanceled, ErrDeadline, ErrLivelock,
// ErrPanic.  For clean stops (cancellation, deadline, livelock) the
// partial Result is returned alongside the error and telemetry is
// still accumulated; after a contained panic the Result is nil and
// telemetry is discarded, because mid-cycle state cannot be trusted.
func Run(o Options) (*Result, error) {
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return RunContext(ctx, o)
}

// RunContext is Run with cooperative cancellation: the simulation
// polls ctx every Options.PollEveryCycles simulated cycles (default
// 4096) and stops early — returning the partial Result and a
// *SimError wrapping ErrCanceled or ErrDeadline — when the context is
// done.  Polling is cycle-counted, so an uncancelled run commits the
// identical instruction stream with or without a context.
func RunContext(ctx context.Context, o Options) (*Result, error) {
	progs := o.Programs
	if len(progs) == 0 {
		if len(o.Workloads) == 0 {
			return nil, fmt.Errorf("recyclesim: no workloads given")
		}
		var err error
		progs, err = workload.MixPrograms(o.Workloads)
		if err != nil {
			return nil, err
		}
	}
	if o.MaxInsts == 0 {
		o.MaxInsts = 200_000
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 4 * o.MaxInsts
	}
	if err := o.Machine.Validate(); err != nil {
		return nil, err
	}
	if err := o.Features.Validate(); err != nil {
		return nil, err
	}
	c, err := core.New(o.Machine, o.Features, progs)
	if err != nil {
		return nil, err
	}
	c.CommitHook = o.CommitHook
	if o.SnapshotHook != nil {
		every := o.SnapshotEvery
		if every == 0 {
			every = 65536
		}
		inner := o.CommitHook
		var committed uint64
		c.CommitHook = func(ci CommitInfo) {
			if inner != nil {
				inner(ci)
			}
			committed++
			if committed%every == 0 {
				o.SnapshotHook(coreSnapshot(c))
			}
		}
	}
	if o.Telemetry != nil {
		c.Obs.Hists = o.Telemetry.Hists
	}
	c.SetRing(o.FlightRecorder)
	c.SetPipeTrace(o.PipeTrace)
	// Poll the RunContext argument and, when distinct, the per-option
	// context too (a batch-level cancel and a per-job cancel must both
	// reach the run).
	var polls []func() error
	if ctx != nil && ctx.Done() != nil {
		polls = append(polls, ctx.Err)
	}
	if o.Context != nil && o.Context != ctx && o.Context.Done() != nil {
		polls = append(polls, o.Context.Err)
	}
	switch len(polls) {
	case 1:
		c.SetPoll(o.PollEveryCycles, polls[0])
	case 2:
		first, second := polls[0], polls[1]
		c.SetPoll(o.PollEveryCycles, func() error {
			if err := first(); err != nil {
				return err
			}
			return second()
		})
	}
	if o.hookCore != nil {
		o.hookCore(c)
	}

	res, runErr, panicVal, stack := runCore(c, o.MaxInsts, o.MaxCycles)
	if runErr == nil && panicVal == nil {
		if o.Telemetry != nil {
			o.Telemetry.Add(c.Obs)
		}
		if o.SnapshotHook != nil {
			o.SnapshotHook(coreSnapshot(c))
		}
		return res, nil
	}

	se := simError(c, o, runErr, panicVal, stack)
	if panicVal != nil {
		// Mid-cycle state: statistics and telemetry may violate their
		// conservation identities, so neither escapes.
		res = nil
	} else {
		// Clean stop at a cycle boundary: the partial statistics and
		// telemetry are internally consistent and worth keeping.
		if o.Telemetry != nil {
			o.Telemetry.Add(c.Obs)
		}
		if o.SnapshotHook != nil {
			o.SnapshotHook(coreSnapshot(c))
		}
	}
	if o.CrashDir != "" && (errors.Is(se.Kind, ErrPanic) || errors.Is(se.Kind, ErrLivelock)) {
		if path, werr := writeCrashBundle(o.CrashDir, o, se, res); werr == nil {
			se.BundlePath = path
		}
	}
	return res, se
}

// runCore drives the core with panic containment: a panic anywhere in
// the cycle loop — simulator bug, invariant-checker fire, user hook —
// is recovered here with its stack, instead of unwinding through the
// caller (and, under RunBatch, killing the whole process from a
// worker goroutine).
func runCore(c *core.Core, maxInsts, maxCycles uint64) (res *Result, err error, panicVal any, stack []byte) {
	defer func() {
		if r := recover(); r != nil {
			panicVal, stack = r, debug.Stack()
		}
	}()
	res, err = c.Run(maxInsts, maxCycles)
	return res, err, nil, nil
}

// coreSnapshot deep-copies the statistics and telemetry a snapshot
// needs, so SnapshotHook receivers can use them after the simulation
// has moved on.
func coreSnapshot(c *core.Core) *Snapshot {
	st := *c.Stats
	st.PerProgram = append([]uint64(nil), c.Stats.PerProgram...)
	m := *c.Obs
	return &Snapshot{Stats: &st, Metrics: &m}
}

// BatchConfig tunes RunBatchContext.
type BatchConfig struct {
	// Workers sizes the pool (<= 0 selects GOMAXPROCS).
	Workers int
	// Retries is the number of extra attempts given to a failed job
	// before its error is recorded.  Cancellation and deadline
	// failures are never retried — the whole batch is going down.
	// Deterministic faults (a livelock, a simulator panic) will fail
	// identically on retry; the knob exists for user hooks with
	// external effects.
	Retries int
	// RetryDelay, when positive, waits before each retry: the delay
	// doubles per attempt (with equal jitter, so concurrent retriers
	// spread out) and is capped at RetryDelayMax (default
	// 64*RetryDelay).  Zero keeps the historical immediate retry.
	// The wait is context-aware: cancellation during a backoff wait
	// fails the job as canceled instead of sleeping it out.
	RetryDelay    time.Duration
	RetryDelayMax time.Duration

	// retrySleep and retryRand are the deterministic injection points
	// the backoff tests use; nil selects backoff.Sleep and a
	// fixed-seed backoff.Rand.  (Fields are unexported: external
	// callers get the production behavior.)
	retrySleep func(context.Context, time.Duration) error
	retryRand  func() float64
}

// RunBatch executes the given simulations concurrently on a worker
// pool (workers <= 0 selects GOMAXPROCS) and returns their results in
// input order: results[i] belongs to opts[i].
//
// Each simulation is exactly the single-threaded, deterministic run
// that Run(opts[i]) performs — parallelism exists only *between*
// simulations, which share no mutable state — so the results are
// byte-identical to a serial loop over Run (the determinism test in
// batch_test.go holds this to the commit stream, not just the stats).
//
// Faults are contained per job: a panic or livelock in opts[i] costs
// only results[i]; every other simulation still runs to completion.
// The returned error is the errors.Join of every failure, each
// wrapped as "batch job i (fingerprint): ..." so errors map back to
// their input index; match individual causes with errors.Is /
// errors.As against the package sentinels.  results[i] is nil when
// job i produced no usable state (configuration error, panic) and
// holds the partial statistics when it stopped cleanly mid-run
// (cancellation, livelock) — pair it with the error list before
// trusting it.
func RunBatch(opts []Options, workers int) ([]*Result, error) {
	return RunBatchContext(context.Background(), opts, BatchConfig{Workers: workers})
}

// RunBatchContext is RunBatch with cooperative cancellation and
// per-job retry.  Canceling ctx stops every in-flight simulation at
// its next poll (each reporting ErrCanceled with partial results) and
// prevents queued jobs from starting.
func RunBatchContext(ctx context.Context, opts []Options, cfg BatchConfig) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sleep := cfg.retrySleep
	if sleep == nil {
		sleep = backoff.Sleep
	}
	results := make([]*Result, len(opts))
	errs := make([]error, len(opts))
	sweep.Run(len(opts), cfg.Workers, func(i int) {
		// Each job gets its own jitter stream (the shared injection
		// point is honored when set): seeded by index so reruns of the
		// same batch draw the same delays.
		rnd := cfg.retryRand
		if rnd == nil && cfg.RetryDelay > 0 {
			rnd = backoff.Rand(uint64(i) + 1)
		}
		for attempt := 0; ; attempt++ {
			if cerr := ctx.Err(); cerr != nil {
				kind := ErrCanceled
				if errors.Is(cerr, context.DeadlineExceeded) {
					kind = ErrDeadline
				}
				results[i], errs[i] = nil, &SimError{Kind: kind, Err: cerr, Fingerprint: fingerprint(opts[i])}
				return
			}
			results[i], errs[i] = RunContext(ctx, opts[i])
			if errs[i] == nil || attempt >= cfg.Retries ||
				errors.Is(errs[i], ErrCanceled) || errors.Is(errs[i], ErrDeadline) {
				return
			}
			// Back off before the retry; a cancellation that lands
			// mid-wait is caught by the ctx check at the top.
			_ = sleep(ctx, backoff.Delay(cfg.RetryDelay, cfg.RetryDelayMax, attempt, rnd))
		}
	})
	var joined []error
	for i, err := range errs {
		if err != nil {
			joined = append(joined, fmt.Errorf("batch job %d (%s): %w", i, fingerprint(opts[i]), err))
		}
	}
	return results, errors.Join(joined...)
}

// NewCore builds a core directly for callers that need cycle-stepping,
// commit hooks, or custom instrumentation (see internal/core for the
// full surface used by the test suite).
func NewCore(m Machine, f Features, progs []*Program) (*core.Core, error) {
	return core.New(m, f, progs)
}
